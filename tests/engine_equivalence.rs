//! Engine equivalence: the sequential DFS checker, the parallel BFS
//! engine (at several worker counts), and hashed dedup must all agree on
//! the exploration counts, and the parallel engine's violation report
//! must not depend on the worker count.
//!
//! The expected `(states, transitions)` pairs are the frozen numbers
//! from `results/e2_modelcheck.csv` as produced by the original
//! sequential checker, so these tests also pin the engines to the seed
//! results byte-for-byte. The mid-size configurations run by default;
//! the multi-million-state rows of the table are behind `--ignored`
//! (run them in release mode).

use llr_core::chain::spec as chain_spec;
use llr_core::filter::spec as filter_spec;
use llr_core::levelarray::spec as la_spec;
use llr_core::ma::spec as ma_spec;
use llr_core::onetime::spec as onetime_spec;
use llr_core::pf::spec as pf_spec;
use llr_core::smallnet::spec as net_spec;
use llr_core::split::spec as split_spec;
use llr_core::splitter::spec as splitter_spec;
use llr_core::tournament::spec as tree_spec;
use llr_gf::FilterParams;
use llr_mc::{CheckError, CheckStats, ModelChecker, StepMachine, World};

/// Worker counts exercised for every configuration. 1 covers the
/// parallel code path degenerated to one thread; the others cover real
/// work splitting (even on a single-core host the layer chunking
/// differs, which is exactly what must not change the results).
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Runs `build()` through the sequential checker and the parallel engine
/// at every worker count, asserting identical `(states, transitions,
/// terminal_states)` everywhere, and pins the counts to `expect` (the
/// seed CSV row) when given.
fn assert_engines_agree<M, F>(
    label: &str,
    build: impl Fn() -> ModelChecker<M>,
    invariant: F,
    expect: Option<(u64, u64)>,
) -> CheckStats
where
    M: StepMachine + Send + Sync,
    F: Fn(&World<'_, M>) -> Result<(), String> + Copy,
{
    let seq = build()
        .check(invariant)
        .unwrap_or_else(|e| panic!("{label}: sequential check failed:\n{e}"));
    if let Some((states, transitions)) = expect {
        assert_eq!(seq.states, states, "{label}: states vs seed CSV");
        assert_eq!(
            seq.transitions, transitions,
            "{label}: transitions vs seed CSV"
        );
    }
    let mut par_depth = None;
    for workers in WORKER_COUNTS {
        let par = build()
            .workers(workers)
            .check_parallel(invariant)
            .unwrap_or_else(|e| panic!("{label}: parallel check ({workers}w) failed:\n{e}"));
        assert_eq!(par.states, seq.states, "{label}: states ({workers}w)");
        assert_eq!(
            par.transitions, seq.transitions,
            "{label}: transitions ({workers}w)"
        );
        assert_eq!(
            par.terminal_states, seq.terminal_states,
            "{label}: terminal states ({workers}w)"
        );
        // BFS depth (layer count) differs from DFS depth by design, but
        // it must be identical across worker counts.
        let d = *par_depth.get_or_insert(par.max_depth);
        assert_eq!(par.max_depth, d, "{label}: BFS depth ({workers}w)");
    }
    seq
}

#[test]
fn splitter_engines_agree() {
    // ℓ=2, 3 sessions: the counts in the CSV are the sum over all 12
    // quiescent initial register assignments.
    let mut total_states = 0u64;
    let mut total_transitions = 0u64;
    for (init_last, init_a1, init_a2) in splitter_spec::all_inits(2) {
        let seq = assert_engines_agree(
            &format!("splitter ℓ=2 init=({init_last},{init_a1},{init_a2})"),
            || splitter_spec::checker(2, 3, init_last, init_a1, init_a2),
            splitter_spec::output_set_invariant,
            None,
        );
        total_states += seq.states;
        total_transitions += seq.transitions;
    }
    assert_eq!((total_states, total_transitions), (126_816, 244_976));
}

#[test]
fn pf_engines_agree() {
    assert_engines_agree(
        "PF exclusion, 5 sessions",
        || pf_spec::checker(5),
        pf_spec::mutual_exclusion,
        Some((1_553, 3_017)),
    );
    assert_engines_agree(
        "PF no-deadlock, 5 sessions",
        || pf_spec::checker(5),
        pf_spec::no_deadlock_invariant,
        Some((1_553, 3_017)),
    );
}

#[test]
fn tournament_engines_agree() {
    for (s, parts, sessions, expect) in [
        (8u64, vec![2u64, 3], 3u8, (2_045, 3_927)),
        (8, vec![0, 7], 3, (3_271, 6_419)),
        (4, vec![0, 1, 3], 2, (17_249, 48_729)),
    ] {
        assert_engines_agree(
            &format!("tournament S={s} pids={parts:?}"),
            || tree_spec::checker(s, &parts, sessions),
            tree_spec::root_exclusion,
            Some(expect),
        );
    }
}

// The SPLIT and chain expectations below supersede the seed CSV rows:
// the seed's `SplitRelease` state key omitted the unreleased path, which
// collapsed states with different futures (its own e2_modelcheck.csv and
// e2_liveness.csv disagreed on the same configurations). With the key
// completed, every engine agrees on these counts.

#[test]
fn split_engines_agree() {
    for (k, procs, sessions, expect) in
        [(2usize, 2usize, 3u8, (9_341, 18_008)), (3, 2, 2, (48_803, 93_696))]
    {
        assert_engines_agree(
            &format!("SPLIT k={k} procs={procs}"),
            || split_spec::checker(k, procs, sessions),
            split_spec::unique_names_invariant,
            Some(expect),
        );
    }
}

#[test]
fn filter_engines_agree() {
    let tiny = FilterParams::new(2, 4, 1, 2).unwrap();
    for (pair, expect) in [
        ([1u64, 2], (441, 840)),
        ([1, 3], (3_130, 6_134)),
        ([0, 3], (441, 840)),
        ([0, 2], (3_130, 6_134)),
    ] {
        assert_engines_agree(
            &format!("FILTER tiny pids={pair:?}"),
            || filter_spec::checker(tiny, &pair, 2),
            filter_spec::combined_invariant,
            Some(expect),
        );
    }
}

#[test]
fn ma_engines_agree() {
    for (k, s, pids, sessions, expect) in [
        (2usize, 3u64, vec![0u64, 2], 3u8, (9_988, 19_046)),
        (3, 3, vec![0, 1, 2], 1, (50_126, 126_609)),
        (2, 4, vec![1, 3], 3, (12_784, 24_514)),
    ] {
        assert_engines_agree(
            &format!("MA k={k} S={s} pids={pids:?}"),
            || ma_spec::checker(k, s, &pids, sessions),
            ma_spec::unique_names_invariant,
            Some(expect),
        );
    }
}

#[test]
fn chain_engines_agree() {
    assert_engines_agree(
        "chain k=2",
        || chain_spec::checker(2, &[3, 9], 2),
        chain_spec::unique_names_invariant,
        Some((163_117, 308_332)),
    );
}

#[test]
fn levelarray_engines_agree() {
    // Swap-based claims finish in 1–2 steps, so these spaces are tiny
    // compared to the read/write families at the same (k, procs).
    for (k, pids, sessions, expect) in [
        (2usize, vec![0u64, 1], 2u8, (49, 84)),
        (3, vec![2u64, 9, 77], 2, (595, 1_546)),
        (4, vec![0u64, 1, 2, 3], 1, (521, 1_508)),
    ] {
        assert_engines_agree(
            &format!("LevelArray k={k} pids={pids:?}"),
            || la_spec::checker(k, &pids, sessions),
            la_spec::unique_names_invariant,
            Some(expect),
        );
    }
}

#[test]
fn smallnet_engines_agree() {
    for (ell, pids, expect) in [
        (1usize, vec![0u64, 1], (53, 70)),
        (2, vec![0u64, 1, 2], (6_583, 14_439)),
    ] {
        assert_engines_agree(
            &format!("small net ℓ={ell} pids={pids:?}"),
            || net_spec::checker(ell, &pids),
            net_spec::unique_names_invariant,
            Some(expect),
        );
    }
}

#[test]
fn onetime_engines_agree() {
    for (k, pids, expect) in
        [(2usize, vec![0u64, 1], (165, 254)), (3, vec![0, 1, 2], (14_887, 34_095))]
    {
        assert_engines_agree(
            &format!("one-time k={k}"),
            || onetime_spec::checker(k, &pids),
            onetime_spec::unique_names_invariant,
            Some(expect),
        );
    }
}

/// Hashed dedup must reproduce the exact-dedup counts on a mid-size
/// instance, sequentially and in parallel.
#[test]
fn hashed_dedup_engines_agree() {
    let exact = split_spec::checker(3, 2, 2)
        .check(split_spec::unique_names_invariant)
        .expect("SPLIT verifies");
    assert_eq!((exact.states, exact.transitions), (48_803, 93_696));

    let hashed = split_spec::checker(3, 2, 2)
        .hashed_dedup(true)
        .check(split_spec::unique_names_invariant)
        .expect("SPLIT verifies hashed");
    assert_eq!(hashed.states, exact.states, "hashed DFS states");
    assert_eq!(hashed.transitions, exact.transitions, "hashed DFS transitions");
    assert_eq!(hashed.max_depth, exact.max_depth, "hashed DFS depth");
    assert_eq!(
        hashed.terminal_states, exact.terminal_states,
        "hashed DFS terminal states"
    );

    for workers in WORKER_COUNTS {
        let par = split_spec::checker(3, 2, 2)
            .hashed_dedup(true)
            .workers(workers)
            .check_parallel(split_spec::unique_names_invariant)
            .expect("SPLIT verifies hashed+parallel");
        assert_eq!(par.states, exact.states, "hashed parallel states ({workers}w)");
        assert_eq!(
            par.transitions, exact.transitions,
            "hashed parallel transitions ({workers}w)"
        );
        assert_eq!(
            par.terminal_states, exact.terminal_states,
            "hashed parallel terminal states ({workers}w)"
        );
    }
}

/// The external-memory (spill-to-disk) backend must reproduce the exact
/// counts of the sequential DFS and the in-RAM parallel engines at every
/// worker count — both with a generous budget (the delta never flushes
/// mid-layer) and with a zero budget, which clamps the flush threshold
/// to its 64 KiB floor and forces multiple sorted runs per BFS layer, so
/// the per-layer merge-join and shard compaction actually run.
#[test]
fn spill_backend_engines_agree() {
    let exact = split_spec::checker(3, 2, 2)
        .check(split_spec::unique_names_invariant)
        .expect("SPLIT verifies");
    assert_eq!((exact.states, exact.transitions), (48_803, 93_696));

    let dir = std::env::temp_dir();
    // 48_803 states × 16 B ≈ 763 KiB of hashes: a zero budget (64 KiB
    // effective) forces ~12 flushes spread across the layers.
    for budget in [1usize << 30, 0] {
        for workers in WORKER_COUNTS {
            let spill = split_spec::checker(3, 2, 2)
                .spill_dir(&dir, budget)
                .workers(workers)
                .check_parallel(split_spec::unique_names_invariant)
                .expect("SPLIT verifies spilled");
            let tag = format!("budget={budget} workers={workers}");
            assert_eq!(spill.states, exact.states, "spill states ({tag})");
            assert_eq!(spill.transitions, exact.transitions, "spill transitions ({tag})");
            assert_eq!(
                spill.terminal_states, exact.terminal_states,
                "spill terminal states ({tag})"
            );
            assert!(spill.peak_resident_bytes > 0, "resident accounting ran ({tag})");
            if budget == 0 {
                assert!(
                    spill.spilled_bytes >= exact.states.saturating_sub(8_192) * 16,
                    "tiny budget must push most hashes to disk ({tag}): \
                     spilled {} bytes",
                    spill.spilled_bytes
                );
            }
        }
    }
}

/// Budgets exercised by the frontier-spill battery. The generous budget
/// keeps everything resident (one chunk per layer, no mid-layer
/// flushes); the tight budget (256 KiB) forces a 128 KiB visited delta
/// and the 64 KiB frontier-window floor, so mid-size layers split into
/// several read chunks; the zero budget clamps every slice to its floor
/// and drives single-digit-state chunks plus multiple sorted runs per
/// layer.
const SPILL_BUDGETS: [usize; 3] = [1usize << 30, 1 << 18, 0];

/// The frontier-on-disk battery: with the whole BFS frontier streaming
/// through per-layer files (`llr_mc::frontier`), every protocol family
/// must reproduce the in-RAM parallel engine's counts byte-for-byte at
/// every worker count and every byte budget. Chunked frontier reads
/// change which worker first materialises a state, but the
/// deterministic (parent, via) merge must keep ids — and therefore
/// counts, depths, and schedules — bit-identical.
#[test]
fn frontier_spill_battery() {
    fn battery<M, F>(label: &str, build: impl Fn() -> ModelChecker<M>, invariant: F)
    where
        M: StepMachine + Send + Sync,
        F: Fn(&World<'_, M>) -> Result<(), String> + Copy,
    {
        let reference = build()
            .workers(1)
            .check_parallel(invariant)
            .unwrap_or_else(|e| panic!("{label}: in-RAM reference failed:\n{e}"));
        let dir = std::env::temp_dir();
        for budget in SPILL_BUDGETS {
            for workers in WORKER_COUNTS {
                let spill = build()
                    .spill_dir(&dir, budget)
                    .workers(workers)
                    .check_parallel(invariant)
                    .unwrap_or_else(|e| {
                        panic!("{label}: spill (budget={budget}, {workers}w) failed:\n{e}")
                    });
                let tag = format!("{label} budget={budget} workers={workers}");
                assert_eq!(spill.states, reference.states, "states ({tag})");
                assert_eq!(spill.transitions, reference.transitions, "transitions ({tag})");
                assert_eq!(
                    spill.terminal_states, reference.terminal_states,
                    "terminal states ({tag})"
                );
                assert_eq!(spill.max_depth, reference.max_depth, "BFS depth ({tag})");
                assert!(spill.peak_resident_bytes > 0, "resident accounting ran ({tag})");
                if budget == 0 {
                    // With every slice at its floor the frontier layers
                    // themselves must have gone through disk, not just
                    // the visited hashes.
                    assert!(
                        spill.spilled_bytes > reference.states * 16,
                        "zero budget must push frontier bytes to disk ({tag}): \
                         spilled {} bytes over {} states",
                        spill.spilled_bytes,
                        reference.states
                    );
                }
            }
        }
    }

    let tiny = FilterParams::new(2, 4, 1, 2).unwrap();
    battery(
        "SPLIT k=2",
        || split_spec::checker(2, 2, 3),
        split_spec::unique_names_invariant,
    );
    battery(
        "FILTER tiny pids=[1,3]",
        || filter_spec::checker(tiny, &[1, 3], 2),
        filter_spec::combined_invariant,
    );
    battery(
        "LevelArray k=3",
        || la_spec::checker(3, &[2, 9, 77], 2),
        la_spec::unique_names_invariant,
    );
    battery(
        "small net ℓ=2",
        || net_spec::checker(2, &[0, 1, 2]),
        net_spec::unique_names_invariant,
    );
}

/// Under a tiny budget the spill backend must hold far less of the
/// visited set in RAM than the in-RAM hashed engine — this is the whole
/// point of the backend, and what the E2 table's budget column claims.
#[test]
fn spill_backend_bounds_resident_memory() {
    let inram = split_spec::checker(3, 2, 2)
        .hashed_dedup(true)
        .workers(1)
        .check_parallel(split_spec::unique_names_invariant)
        .expect("SPLIT verifies hashed");
    let spill = split_spec::checker(3, 2, 2)
        .spill_dir(std::env::temp_dir(), 0)
        .workers(1)
        .check_parallel(split_spec::unique_names_invariant)
        .expect("SPLIT verifies spilled");
    assert!(
        spill.peak_resident_bytes < inram.peak_resident_bytes,
        "spilling must lower the tracked resident peak: {} vs {}",
        spill.peak_resident_bytes,
        inram.peak_resident_bytes
    );
}

/// On a broken spec the parallel engine must report the *same* violation
/// — message and schedule — regardless of worker count or dedup mode
/// (first violating state in deterministic BFS id order), and replaying
/// the schedule must reproduce the violating state.
#[test]
fn violation_schedule_is_deterministic() {
    // "No terminal state exists" is false for the one-time grid: every
    // complete run ends with both machines done.
    let broken = |w: &World<'_, onetime_spec::OneTimeUser>| {
        if w.all_done() {
            Err("reached a terminal state".to_string())
        } else {
            Ok(())
        }
    };

    let mut first: Option<(String, Vec<usize>)> = None;
    for hashed in [false, true] {
        for workers in WORKER_COUNTS {
            let err = onetime_spec::checker(2, &[0, 1])
                .hashed_dedup(hashed)
                .workers(workers)
                .check_parallel(broken)
                .expect_err("the broken invariant must trip");
            let CheckError::Violation(v) = err else {
                panic!("expected a violation, got {err}");
            };
            let got = (v.message.clone(), v.schedule.clone());
            match &first {
                None => {
                    // Replay check: the schedule drives both machines to
                    // completion from the initial state.
                    assert!(!v.schedule.is_empty());
                    assert!(v.trace.contains("#0"), "trace renders steps:\n{}", v.trace);
                    first = Some(got);
                }
                Some(expected) => assert_eq!(
                    &got, expected,
                    "violation differs (workers={workers}, hashed={hashed})"
                ),
            }
        }
    }

    // The spill backend must report the identical violation — message
    // and schedule — at every budget, including the zero budget that
    // forces the visited set through disk runs and the frontier through
    // single-state read chunks.
    let expected = first.expect("in-RAM engines produced a violation");
    for budget in SPILL_BUDGETS {
        for workers in WORKER_COUNTS {
            let err = onetime_spec::checker(2, &[0, 1])
                .spill_dir(std::env::temp_dir(), budget)
                .workers(workers)
                .check_parallel(broken)
                .expect_err("the broken invariant must trip under spilling");
            let CheckError::Violation(v) = err else {
                panic!("expected a violation, got {err}");
            };
            assert_eq!(
                (v.message.clone(), v.schedule.clone()),
                expected,
                "spill violation differs (budget={budget}, workers={workers})"
            );
        }
    }
}

/// The full multi-million-state rows of the seed table, sequential vs
/// parallel. Slow: run with
/// `cargo test --release --test engine_equivalence -- --ignored`.
#[test]
#[ignore = "multi-million-state rows; run in release mode"]
fn full_seed_table_engines_agree() {
    let mut total = (0u64, 0u64);
    for (init_last, init_a1, init_a2) in splitter_spec::all_inits(3) {
        let seq = assert_engines_agree(
            &format!("splitter ℓ=3 init=({init_last},{init_a1},{init_a2})"),
            || splitter_spec::checker(3, 2, init_last, init_a1, init_a2),
            splitter_spec::output_set_invariant,
            None,
        );
        total.0 += seq.states;
        total.1 += seq.transitions;
    }
    assert_eq!(total, (5_450_316, 15_563_376));

    assert_engines_agree(
        "tournament S=4 full",
        || tree_spec::checker(4, &[0, 1, 2, 3], 2),
        tree_spec::root_exclusion,
        Some((486_893, 1_817_694)),
    );
    assert_engines_agree(
        "SPLIT k=3 full",
        || split_spec::checker(3, 3, 1),
        split_spec::unique_names_invariant,
        Some((1_255_072, 3_407_847)),
    );
    let gf5 = FilterParams::new(3, 25, 1, 5).unwrap();
    assert_engines_agree(
        "FILTER gf5",
        || filter_spec::checker(gf5, &[1, 6, 11], 1),
        filter_spec::combined_invariant,
        Some((294_622, 863_511)),
    );
    assert_engines_agree(
        "one-time k=4",
        || onetime_spec::checker(4, &[0, 1, 2, 3]),
        onetime_spec::unique_names_invariant,
        Some((2_884_713, 8_780_764)),
    );
}
