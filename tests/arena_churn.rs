//! Churn battery for the gated `NameArena`: client threads die
//! mid-acquire, at seeded protocol steps, under real oversubscription —
//! and the arena must shrug.
//!
//! Topology per round: a `k = 8` SPLIT behind a 4-permit gate
//! ([`NameArena::with_permits`]), 8 client threads hammering it, 0–3 of
//! them armed (via [`ChaosService`]) to panic partway through an
//! acquire. The three properties under test:
//!
//! * **zero leaked permits** — after every thread joins, all 4 permits
//!   are back at the gate (the RAII guard returned the dead clients');
//! * **no deadlocked parkers** — oversubscribed threads park at the
//!   gate, so a crash that wedged the park/notify protocol would hang
//!   the round; every round quiescing *is* the assertion;
//! * **uniqueness among survivors** — every successfully acquired name
//!   is in range and exclusively held, torn wreckage notwithstanding.
//!
//! Each round gets a **fresh arena**: a client that died mid-acquire
//! left permanent partial marks, and the 4-permit gate on a capacity-8
//! protocol budgets for at most 4 such ghosts — reusing the arena across
//! rounds would accumulate ghosts past any budget.

use llr_core::arena::NameArena;
use llr_core::chaos::ChaosService;
use llr_core::split::Split;
use llr_core::traits::{Renaming, RenamingHandle};
use llr_mc::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const ROUNDS: u64 = 100;
const THREADS: u64 = 8;
const GATE: usize = 4;
const ITERS: u32 = 10;

/// Quiet the default panic hook for the duration of `f`: every round
/// *intends* some panics, and 100 rounds of backtraces drown the output.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn churn_rounds_leak_nothing() {
    with_quiet_panics(|| {
        let mut total_crashes = 0u64;
        for round in 0..ROUNDS {
            let mut gen = SplitMix64::new(0xC4A5_4E57_0000_0001 ^ (round * 0x9E37));
            let svc = ChaosService::new(Split::new(8));

            // Arm 0..=3 distinct victims — within the gate's 8 − 4 = 4
            // ghost headroom — each dying at a seeded acquire step.
            let mut doomed = Vec::new();
            for _ in 0..gen.next_index(4) {
                let t = gen.next_index(THREADS as usize) as u64;
                if !doomed.contains(&t) {
                    doomed.push(t);
                }
            }
            let pid = |t: u64| round * 7_919 + t * 31 + 7;
            for &t in &doomed {
                svc.arm(pid(t), gen.next_index(12) as u64);
            }

            let arena = NameArena::with_permits(svc, GATE);
            let claimed: Vec<AtomicBool> = (0..arena.dest_size())
                .map(|_| AtomicBool::new(false))
                .collect();
            let crashes = AtomicU64::new(0);

            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let arena = &arena;
                    let claimed = &claimed;
                    let crashes = &crashes;
                    s.spawn(move || {
                        let mut c = arena.client(pid(t));
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            for _ in 0..ITERS {
                                let n = c.acquire();
                                assert!(n < claimed.len() as u64, "name {n} out of range");
                                let was = claimed[n as usize].swap(true, Ordering::SeqCst);
                                assert!(!was, "name {n} double-held");
                                claimed[n as usize].store(false, Ordering::SeqCst);
                                c.release();
                            }
                        }));
                        if run.is_err() {
                            crashes.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });

            assert_eq!(
                arena.free_permits(),
                GATE,
                "round {round}: a dead client leaked its admission permit \
                 ({} crashes this round)",
                crashes.load(Ordering::SeqCst)
            );
            total_crashes += crashes.load(Ordering::SeqCst);
        }
        // The battery is only meaningful if fuses actually fire: over 100
        // seeded rounds a healthy fraction of armed clients must die.
        assert!(
            total_crashes >= ROUNDS / 2,
            "only {total_crashes} crashes across {ROUNDS} rounds — fuses not firing"
        );
    });
}

/// A crash must wake the queue, not strand it: with a single permit and
/// a parked waiter behind a doomed client, the waiter still finishes.
#[test]
fn parked_waiters_survive_a_crash() {
    with_quiet_panics(|| {
        let svc = ChaosService::new(Split::new(2));
        svc.arm(99, 1); // the doomed client dies one step into its acquire
        let arena = NameArena::with_permits(svc, 1);
        std::thread::scope(|s| {
            let doomed = s.spawn(|| {
                let mut c = arena.client(99);
                catch_unwind(AssertUnwindSafe(|| c.acquire())).is_err()
            });
            let survivor = s.spawn(|| {
                let mut c = arena.client(7);
                for _ in 0..5 {
                    let n = c.acquire(); // may have to park behind the doomed client
                    assert!(n < arena.dest_size());
                    c.release();
                }
            });
            assert!(doomed.join().unwrap(), "the armed fuse must fire");
            survivor.join().unwrap();
        });
        assert_eq!(arena.free_permits(), 1);
    });
}
