//! Property and round-trip tests for the on-disk frontier layer format
//! (`llr_mc::frontier`).
//!
//! The spill backend's correctness rests on layer files reading back
//! *exactly* what was written — a silently short or corrupted layer
//! would drop frontier states and change exploration counts without any
//! engine-level assertion firing. So this suite pins the format
//! directly: seeded random layers (random sizes, snapshot widths,
//! machine slot counts) must round-trip record-for-record through
//! `LayerWriter`/`LayerReader`, in full scans, chunked scans, and point
//! reads; and every torn-file shape — truncated header, unfinalized
//! count, a record cut mid-way — must fail **loudly** at `open`, never
//! yield a short layer.

use llr_mc::frontier::{layer_record_bytes, LayerReader, LayerRecord, LayerWriter};
use llr_mc::SplitMix64;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A scratch directory unique to this test binary invocation, removed
/// at the end of each test that creates one.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "llr-frontier-format-{}-{tag}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Generates a pseudorandom layer: `count` records over `words`
/// registers and `machines` slots, all fields drawn from `rng`.
fn random_layer(
    rng: &mut SplitMix64,
    count: usize,
    words: usize,
    machines: usize,
) -> Vec<LayerRecord> {
    (0..count)
        .map(|i| LayerRecord {
            id: i as u32,
            done: (0..machines).map(|_| rng.next_u64() & 1 == 1).collect(),
            machine_ids: (0..machines).map(|_| rng.next_u64() as u32).collect(),
            snap: (0..words).map(|_| rng.next_u64()).collect(),
        })
        .collect()
}

/// Writes `layer` to `path` through the public writer.
fn write_layer(path: &Path, words: usize, machines: usize, layer: &[LayerRecord]) {
    let mut w = LayerWriter::create(path, words, machines).unwrap();
    for rec in layer {
        w.push(rec.id, &rec.done, &rec.machine_ids, &rec.snap).unwrap();
        assert_eq!(w.count(), rec.id as u64 + 1, "writer counts pushes");
    }
    assert_eq!(
        w.bytes(),
        24 + layer.len() as u64 * layer_record_bytes(words, machines),
        "writer byte accounting matches the record-size formula"
    );
    assert_eq!(w.finish().unwrap(), layer.len() as u64);
}

/// Seeded random layers round-trip exactly: full scan, chunked scans at
/// awkward chunk sizes, and point reads in a shuffled order all decode
/// the records that were written.
#[test]
fn random_layers_round_trip() {
    let dir = TestDir::new("roundtrip");
    let mut rng = SplitMix64::new(20260808);
    for case in 0..12 {
        let words = 1 + rng.next_index(9);
        let machines = 1 + rng.next_index(5);
        let count = 1 + rng.next_index(300);
        let layer = random_layer(&mut rng, count, words, machines);
        let path = dir.file(&format!("layer-{case}.flr"));
        write_layer(&path, words, machines, &layer);

        let mut r = LayerReader::open(&path).unwrap();
        assert_eq!(r.count(), count as u64);
        assert_eq!(r.words(), words);
        assert_eq!(r.machines(), machines);

        // Full scan.
        assert_eq!(r.read_range(0, count).unwrap(), layer, "full scan (case {case})");

        // Chunked scan with a chunk size that does not divide the count,
        // plus an over-long final request (read_range clamps).
        let chunk = 1 + rng.next_index(count.max(2) - 1);
        let mut scanned = Vec::new();
        let mut at = 0u64;
        while at < count as u64 {
            let got = r.read_range(at, chunk).unwrap();
            assert!(!got.is_empty(), "non-empty chunk below the end");
            at += got.len() as u64;
            scanned.extend(got);
        }
        assert_eq!(scanned, layer, "chunked scan (case {case})");
        assert!(
            r.read_range(count as u64, chunk).unwrap().is_empty(),
            "reads past the end clamp to empty"
        );

        // Point reads in a scrambled order (the POR patch-up access
        // pattern), interleaved with sequential position reuse.
        for _ in 0..count.min(40) {
            let i = rng.next_index(count);
            assert_eq!(
                r.read_at(i as u64).unwrap(),
                layer[i],
                "point read of record {i} (case {case})"
            );
        }
    }
}

/// A multi-layer sequence (the spill engine's actual layout: one file
/// per BFS layer) re-opens and re-reads each file independently.
#[test]
fn multiple_layer_files_are_independent() {
    let dir = TestDir::new("multilayer");
    let mut rng = SplitMix64::new(7);
    let words = 4;
    let machines = 3;
    let layers: Vec<Vec<LayerRecord>> = (0..5)
        .map(|_| {
            let count = 1 + rng.next_index(50);
            random_layer(&mut rng, count, words, machines)
        })
        .collect();
    for (i, layer) in layers.iter().enumerate() {
        write_layer(&dir.file(&format!("layer-{i}.flr")), words, machines, layer);
    }
    // Read back in reverse order through fresh readers.
    for (i, layer) in layers.iter().enumerate().rev() {
        let mut r = LayerReader::open(&dir.file(&format!("layer-{i}.flr"))).unwrap();
        assert_eq!(&r.read_range(0, layer.len()).unwrap(), layer, "layer {i}");
    }
}

/// Asserts that `open` fails with `InvalidData` and a message containing
/// `needle`.
fn assert_open_fails(path: &Path, needle: &str, tag: &str) {
    let err = match LayerReader::open(path) {
        Err(e) => e,
        Ok(_) => panic!("{tag}: open must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{tag}: error kind");
    let msg = err.to_string();
    assert!(
        msg.contains(needle),
        "{tag}: error message must name the failure: got {msg:?}, wanted {needle:?}"
    );
}

/// A file truncated mid-record — the torn-write shape a crash mid-layer
/// leaves behind — must be rejected loudly at `open`, not silently read
/// short.
#[test]
fn truncated_mid_record_fails_loudly() {
    let dir = TestDir::new("torn");
    let mut rng = SplitMix64::new(99);
    let (words, machines) = (3, 2);
    let layer = random_layer(&mut rng, 20, words, machines);
    let path = dir.file("torn.flr");
    write_layer(&path, words, machines, &layer);
    LayerReader::open(&path).expect("the intact file opens");

    let record = layer_record_bytes(words, machines);
    let full = 24 + 20 * record;
    // Cut at several offsets inside the final record, including one byte
    // short of complete.
    for cut in [full - 1, full - record / 2, full - record + 1] {
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        assert_open_fails(&path, "truncated or torn", &format!("cut at {cut}"));
    }
    // Extra trailing garbage is just as torn as a short file.
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&[0xAB; 7]).unwrap();
    drop(f);
    assert_open_fails(&path, "truncated or torn", "trailing garbage");
}

/// A writer that never ran `finish` leaves the sentinel count in the
/// header; `open` must refuse the file as torn rather than trusting the
/// byte length.
#[test]
fn unfinalized_file_fails_loudly() {
    let dir = TestDir::new("unfinalized");
    let path = dir.file("unfinished.flr");
    {
        let mut w = LayerWriter::create(&path, 2, 1).unwrap();
        w.push(0, &[false], &[0], &[1, 2]).unwrap();
        // Dropped without finish(): the header still holds the sentinel.
        // Flush what the BufWriter holds by dropping it.
    }
    assert_open_fails(&path, "not finalized", "dropped writer");
}

/// Headers shorter than the fixed header size, and wrong magic bytes,
/// each produce their own loud error.
#[test]
fn bad_headers_fail_loudly() {
    let dir = TestDir::new("badheader");

    let short = dir.file("short.flr");
    File::create(&short).unwrap().write_all(b"LLRF").unwrap();
    assert_open_fails(&short, "truncated header", "4-byte file");

    let empty = dir.file("empty.flr");
    File::create(&empty).unwrap();
    assert_open_fails(&empty, "truncated header", "empty file");

    // A finalized valid file whose magic is then stomped.
    let stomped = dir.file("stomped.flr");
    let mut w = LayerWriter::create(&stomped, 1, 1).unwrap();
    w.push(0, &[true], &[3], &[9]).unwrap();
    w.finish().unwrap();
    let mut f = OpenOptions::new().write(true).open(&stomped).unwrap();
    f.seek(SeekFrom::Start(0)).unwrap();
    f.write_all(b"XXRFLR1\0").unwrap();
    drop(f);
    assert_open_fails(&stomped, "bad magic", "stomped magic");
}

/// A header whose declared count disagrees with the byte length — e.g.
/// a count patched for more records than were flushed — is rejected with
/// the declared-vs-actual sizes in the message.
#[test]
fn count_length_mismatch_fails_loudly() {
    let dir = TestDir::new("mismatch");
    let path = dir.file("mismatch.flr");
    let mut w = LayerWriter::create(&path, 2, 2).unwrap();
    for i in 0..5u32 {
        w.push(i, &[false, true], &[i, i], &[i as u64, 0]).unwrap();
    }
    w.finish().unwrap();

    // Patch the count field (offset 16) to claim 6 records.
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(16)).unwrap();
    f.write_all(&6u64.to_le_bytes()).unwrap();
    drop(f);
    assert_open_fails(&path, "declares 6 records", "inflated count");
}
