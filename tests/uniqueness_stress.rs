//! Integration: every protocol keeps concurrently-held names unique under
//! real multi-threaded contention, with more registered processes than
//! active ones and randomized hold times.

use llr_core::arena::NameArena;
use llr_core::chain::Chain;
use llr_core::filter::Filter;
use llr_core::harness::{stress, StressConfig};
use llr_core::levelarray::LevelArray;
use llr_core::ma::MaGrid;
use llr_core::smallnet::RenewableNet;
use llr_core::split::Split;
use llr_core::traits::Renaming;
use llr_gf::FilterParams;

fn cfg(pids: Vec<u64>, k: usize, ops: u64, seed: u64) -> StressConfig {
    StressConfig {
        pids,
        concurrency: k,
        ops_per_thread: ops,
        dwell_spins: 32,
        seed,
    }
}

#[test]
fn split_stress_at_full_k() {
    for k in [2usize, 3, 5, 8] {
        let split = Split::new(k);
        let pids: Vec<u64> = (0..k as u64).map(|i| i * 0x9E37_79B9 + 7).collect();
        let report = stress(&split, &cfg(pids, k, 400, k as u64));
        assert_eq!(report.violations, 0, "k={k}");
        assert!(report.max_name < split.dest_size(), "k={k}");
        // Theorem 2: ≤ 9 accesses per splitter, k-1 splitters per op pair.
        assert!(
            report.max_accesses_per_op <= 9 * (k as u64 - 1),
            "k={k}: {} accesses",
            report.max_accesses_per_op
        );
    }
}

#[test]
fn split_stress_with_spectators() {
    // 12 registered processes rotate through k = 4 active slots.
    let split = Split::new(4);
    let pids: Vec<u64> = (0..12u64).map(|i| i * 1_000_003).collect();
    let report = stress(&split, &cfg(pids, 4, 150, 99));
    assert_eq!(report.violations, 0);
    assert!(report.max_name < 27);
}

#[test]
fn filter_stress_two_k_four() {
    for k in [2usize, 3, 4, 6] {
        let params = FilterParams::two_k_four(k).unwrap();
        let s = params.source_size();
        let pids: Vec<u64> = (0..(2 * k as u64)).map(|i| (i * (s / 31) + 3) % s).collect();
        let filter = Filter::new(params, &pids).unwrap();
        let report = stress(&filter, &cfg(pids, k, 120, 7 * k as u64));
        assert_eq!(report.violations, 0, "k={k}");
        assert!(report.max_name < params.dest_size(), "k={k}");
        assert!(
            report.max_accesses_per_op
                <= params.getname_access_bound() + params.release_access_bound(),
            "k={k}: {} accesses vs bound {}",
            report.max_accesses_per_op,
            params.getname_access_bound() + params.release_access_bound()
        );
    }
}

#[test]
fn filter_stress_polynomial_regime() {
    let k = 5;
    let params = FilterParams::polynomial(k, 2).unwrap();
    let s = params.source_size();
    let pids: Vec<u64> = (0..10u64).map(|i| (i * 7 + 1) % s).collect();
    let filter = Filter::new(params, &pids).unwrap();
    let report = stress(&filter, &cfg(pids, k, 150, 3));
    assert_eq!(report.violations, 0);
}

#[test]
fn ma_stress() {
    for k in [2usize, 3, 5] {
        let s = 64;
        let ma = MaGrid::new(k, s);
        let pids: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        let report = stress(&ma, &cfg(pids, k, 200, k as u64));
        assert_eq!(report.violations, 0, "k={k}");
        assert!(report.max_name < ma.dest_size(), "k={k}");
    }
}

#[test]
fn chain_stress_theorem11() {
    let chain = Chain::theorem11(4).unwrap();
    let pids: Vec<u64> = vec![5, 1 << 40, u64::MAX - 1, 0xABCDEF, 42, 77777];
    let report = stress(&chain, &cfg(pids, 4, 60, 11));
    assert_eq!(report.violations, 0);
    assert!(report.max_name < 10); // k(k+1)/2
}

#[test]
fn chain_stress_split_ma() {
    let chain = Chain::split_ma(4).unwrap();
    let pids: Vec<u64> = (0..8u64).map(|i| i << 55 | 3).collect();
    let report = stress(&chain, &cfg(pids, 4, 80, 23));
    assert_eq!(report.violations, 0);
    assert!(report.max_name < 10);
}

#[test]
fn levelarray_stress_at_full_k() {
    for k in [2usize, 3, 5, 8] {
        let la = LevelArray::new(k);
        let pids: Vec<u64> = (0..k as u64).map(|i| i * 0x9E37_79B9 + 11).collect();
        let report = stress(&la, &cfg(pids, k, 300, k as u64 + 100));
        assert_eq!(report.violations, 0, "k={k}");
        assert!(report.max_name < la.dest_size(), "k={k}");
    }
}

#[test]
fn renewable_net_stress_with_spectators() {
    // 8 registered processes rotate through the k = 4 entry slots of a
    // generational small network.
    let net = RenewableNet::new(3);
    let pids: Vec<u64> = (0..8u64).map(|i| i * 1_000_003 + 1).collect();
    let report = stress(&net, &cfg(pids, 4, 150, 31));
    assert_eq!(report.violations, 0);
    assert!(report.max_name < net.dest_size());
}

#[test]
fn rivals_oversubscribed_through_arena() {
    // 12 client pids funneled through a k = 4 admission gate onto each
    // rival: the gate guarantees at most 4 concurrent participants, so
    // the protocols' own concurrency bounds hold even oversubscribed.
    let pids: Vec<u64> = (0..12u64).map(|i| i * 999_999_937 + 7).collect();

    let arena = NameArena::new(LevelArray::new(4));
    let report = stress(&arena, &cfg(pids.clone(), 4, 120, 53));
    assert_eq!(report.violations, 0, "arena(LevelArray)");
    assert!(report.max_name < arena.dest_size());

    let arena = NameArena::new(RenewableNet::new(3));
    let report = stress(&arena, &cfg(pids, 4, 120, 59));
    assert_eq!(report.violations, 0, "arena(RenewableNet)");
    assert!(report.max_name < arena.dest_size());
}

#[test]
fn long_run_name_recycling() {
    // One protocol object, many generations of handles: long-lived means
    // the object never wears out.
    let split = Split::new(3);
    for generation in 0..20u64 {
        let pids: Vec<u64> = (0..3u64).map(|i| generation * 1000 + i * 37).collect();
        let report = stress(&split, &cfg(pids, 3, 50, generation));
        assert_eq!(report.violations, 0, "generation {generation}");
    }
}
