//! Differential and stress tests for the real-atomics backend.
//!
//! Part 1 (differential): every `ProtocolCore` spec, run single-threaded
//! under a deterministic round-robin schedule, must behave **identically**
//! on `SimMemory` and `AtomicMemory` — same per-step machine state (the
//! canonical `key()` encoding, which includes every held name), same
//! completion, same final register file. This pins the production backend
//! to the backend the model checker verified, in both its padded and flat
//! representations.
//!
//! Part 2 (stress): the unique-names invariant under *real* thread
//! interleavings at 2/4/8 threads, for SPLIT, MA, chain, FILTER, and the
//! admission-gated `NameArena` — including oversubscription (more client
//! threads than `k`). `arena_smoke` is the short release-mode gate ci.sh
//! runs on every PR.

use llr_core::arena::NameArena;
use llr_core::chain::{spec as chain_spec, Chain};
use llr_core::filter::{spec as filter_spec, Filter};
use llr_core::levelarray::{spec as la_spec, LevelArray};
use llr_core::ma::{spec as ma_spec, MaGrid};
use llr_core::smallnet::{spec as net_spec, RenewableNet};
use llr_core::onetime::spec as onetime_spec;
use llr_core::pf::spec as pf_spec;
use llr_core::split::{spec as split_spec, Split};
use llr_core::splitter::spec as splitter_spec;
use llr_core::tournament::spec as tree_spec;
use llr_core::traits::{Renaming, RenamingHandle};
use llr_gf::FilterParams;
use llr_mc::{ModelChecker, StepMachine};
use llr_mem::{AtomicMemory, MemPolicy, Memory, SimMemory};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Part 1: single-threaded differential SimMemory vs AtomicMemory
// ---------------------------------------------------------------------------

/// Steps `machines` round-robin on `mem` until all are done, recording
/// each step's `(machine, key-after, done)` observation. Panics if the
/// run exceeds `cap` steps (a backend divergence could otherwise loop).
fn trace_round_robin<M: StepMachine>(
    machines: &mut [M],
    mem: &dyn Memory,
    cap: u64,
) -> Vec<(usize, Vec<u64>, bool)> {
    let mut done = vec![false; machines.len()];
    let mut trace = Vec::new();
    let mut steps = 0u64;
    while done.iter().any(|d| !d) {
        for (i, m) in machines.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            done[i] = m.step(mem).is_done();
            let mut key = Vec::new();
            m.key(&mut key);
            trace.push((i, key, done[i]));
            steps += 1;
            assert!(steps < cap, "round-robin exceeded {cap} steps");
        }
    }
    trace
}

/// Runs `checker`'s configuration round-robin on `SimMemory` and on
/// `AtomicMemory` (both padded and flat cell representations) and asserts
/// the three traces and final register files are identical. The `key()`
/// observation is total machine state — it includes every acquired name
/// (`key_token` pushes the held name) and every pending release's locals.
fn assert_backends_agree<M: StepMachine>(label: &str, checker: &ModelChecker<M>) {
    let layout = checker.layout();
    let sim = SimMemory::new(layout);
    let mut sim_machines = checker.machines().to_vec();
    let reference = trace_round_robin(&mut sim_machines, &sim, 1_000_000);

    for policy in [MemPolicy::default(), MemPolicy::baseline()] {
        let atomic = AtomicMemory::with_policy(layout.initial_values(), policy);
        let mut machines = checker.machines().to_vec();
        let trace = trace_round_robin(&mut machines, &atomic, 1_000_000);
        assert_eq!(
            trace.len(),
            reference.len(),
            "{label} [{policy:?}]: step counts diverge"
        );
        for (n, (s, a)) in reference.iter().zip(&trace).enumerate() {
            assert_eq!(s, a, "{label} [{policy:?}]: step {n} diverges");
        }
        assert_eq!(
            sim.snapshot(),
            atomic.snapshot(),
            "{label} [{policy:?}]: final register files diverge"
        );
    }
}

#[test]
fn splitter_backends_agree() {
    for (init_last, init_a1, init_a2) in splitter_spec::all_inits(2) {
        assert_backends_agree(
            &format!("splitter init=({init_last},{init_a1},{init_a2})"),
            &splitter_spec::checker(2, 3, init_last, init_a1, init_a2),
        );
    }
}

#[test]
fn pf_backends_agree() {
    assert_backends_agree("PF ME block", &pf_spec::checker(5));
}

#[test]
fn tournament_backends_agree() {
    assert_backends_agree("tournament S=8", &tree_spec::checker(8, &[2, 3], 3));
    assert_backends_agree("tournament S=4", &tree_spec::checker(4, &[0, 1, 3], 2));
}

#[test]
fn split_backends_agree() {
    assert_backends_agree("SPLIT k=3", &split_spec::checker(3, 2, 2));
    assert_backends_agree("SPLIT k=4", &split_spec::checker(4, 3, 2));
}

#[test]
fn filter_backends_agree() {
    let tiny = FilterParams::new(2, 4, 1, 2).unwrap();
    assert_backends_agree("FILTER tiny", &filter_spec::checker(tiny, &[1, 2], 2));
    let gf5 = FilterParams::new(3, 25, 1, 5).unwrap();
    assert_backends_agree("FILTER gf5", &filter_spec::checker(gf5, &[1, 6, 11], 1));
}

#[test]
fn ma_backends_agree() {
    assert_backends_agree("MA k=2 S=3", &ma_spec::checker(2, 3, &[0, 2], 3));
    assert_backends_agree("MA k=3 S=3", &ma_spec::checker(3, 3, &[0, 1, 2], 1));
}

#[test]
fn chain_backends_agree() {
    assert_backends_agree("chain k=2", &chain_spec::checker(2, &[3, 9], 2));
    assert_backends_agree("chain k=3", &chain_spec::checker(3, &[3, 9, 27], 1));
}

#[test]
fn onetime_backends_agree() {
    assert_backends_agree("one-time k=2", &onetime_spec::checker(2, &[0, 1]));
    assert_backends_agree("one-time k=3", &onetime_spec::checker(3, &[0, 1, 2]));
}

#[test]
fn levelarray_backends_agree() {
    // The claim step is a Memory::swap: SimMemory runs the default
    // read+write decomposition, AtomicMemory a hardware exchange — the
    // traces must be indistinguishable.
    assert_backends_agree("LevelArray k=2", &la_spec::checker(2, &[0, 1], 2));
    assert_backends_agree("LevelArray k=3", &la_spec::checker(3, &[2, 9, 77], 2));
}

#[test]
fn smallnet_backends_agree() {
    assert_backends_agree("small net ℓ=1", &net_spec::checker(1, &[0, 1]));
    assert_backends_agree("small net ℓ=2", &net_spec::checker(2, &[0, 1, 2]));
}

// ---------------------------------------------------------------------------
// Part 2: multi-threaded stress — unique names under real interleavings
// ---------------------------------------------------------------------------

/// Hammers `rn` with one thread per pid, asserting no name is ever held
/// by two threads at once (claim-array check) and all names are in range.
fn stress_unique_names<R: Renaming>(rn: &R, pids: &[u64], ops_per_thread: u64) {
    let claimed: Vec<AtomicBool> = (0..rn.dest_size()).map(|_| AtomicBool::new(false)).collect();
    std::thread::scope(|s| {
        for &pid in pids {
            let rn = &rn;
            let claimed = &claimed;
            s.spawn(move || {
                let mut h = rn.handle(pid);
                for _ in 0..ops_per_thread {
                    let n = h.acquire();
                    let was = claimed[n as usize].swap(true, Ordering::SeqCst);
                    assert!(!was, "name {n} double-held");
                    claimed[n as usize].store(false, Ordering::SeqCst);
                    h.release();
                }
            });
        }
    });
}

/// Distinct, sparse pids for protocols with an unbounded source space.
fn sparse_pids(n: u64) -> Vec<u64> {
    (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(3)).collect()
}

#[test]
fn split_stress_2_4_8_threads() {
    for threads in [2usize, 4, 8] {
        let split = Split::new(threads);
        stress_unique_names(&split, &sparse_pids(threads as u64), 300);
    }
}

#[test]
fn ma_stress_2_4_threads() {
    // MA pids come from the source space 0..S; threads = k here.
    for threads in [2usize, 4] {
        let ma = MaGrid::new(threads, 64);
        let pids: Vec<u64> = (0..threads as u64).map(|i| i * 17 + 1).collect();
        stress_unique_names(&ma, &pids, 300);
    }
}

#[test]
fn filter_stress_4_threads() {
    let params = FilterParams::two_k_four(4).unwrap();
    let pids: Vec<u64> = (0..4u64).map(|i| i * 11 + 1).collect();
    let filter = Filter::new(params, &pids).unwrap();
    stress_unique_names(&filter, &pids, 300);
}

#[test]
fn chain_stress_3_threads() {
    let chain = Chain::theorem11(3).unwrap();
    stress_unique_names(&chain, &sparse_pids(3), 200);
}

#[test]
fn levelarray_stress_2_4_8_threads() {
    for threads in [2usize, 4, 8] {
        let la = LevelArray::new(threads);
        stress_unique_names(&la, &sparse_pids(threads as u64), 300);
    }
}

#[test]
fn renewable_net_stress_4_threads() {
    // Generational rotation under real contention: 4 threads on a k = 4
    // network, hundreds of generations.
    let net = RenewableNet::new(3);
    stress_unique_names(&net, &sparse_pids(4), 300);
}

#[test]
fn arena_oversubscribed_stress_8_threads() {
    // 8 client threads multiplexed onto k = 4 protocols by the arena's
    // admission gate: SPLIT (unbounded pid space) and MA (pids from 0..S).
    let arena = NameArena::new(Split::new(4));
    stress_unique_names(&arena, &sparse_pids(8), 300);

    let arena = NameArena::new(MaGrid::new(4, 64));
    let pids: Vec<u64> = (0..8u64).map(|i| i * 5 + 2).collect();
    stress_unique_names(&arena, &pids, 300);

    // The two rivals behind the same gate: LevelArray's swap-claimed bits
    // and the generational small network.
    let arena = NameArena::new(LevelArray::new(4));
    stress_unique_names(&arena, &sparse_pids(8), 300);

    let arena = NameArena::new(RenewableNet::new(3));
    stress_unique_names(&arena, &sparse_pids(8), 300);
}

/// The ci.sh release-mode smoke: a few thousand gated acquire/release
/// ops at 4 threads, uniqueness-checked, on the full arena stack
/// (gate → session reuse → padded atomics → relaxed release stores).
#[test]
fn arena_smoke() {
    let arena = Arc::new(NameArena::new(Split::new(4)));
    stress_unique_names(arena.as_ref(), &sparse_pids(4), 1_000);
    // Quiescent now; the register file must be back to an all-released
    // configuration in which a fresh client immediately succeeds.
    let mut c = arena.client(999_983);
    let n = c.acquire();
    assert!(n < arena.dest_size());
    c.release();
}
