#!/usr/bin/env bash
# Per-PR gate. Everything runs offline — the workspace has no
# third-party dependencies, so `--offline` must always succeed.
#
#   1. tier-1: release build + full test suite
#   2. lint: clippy, warnings are errors
#   3. docs: `cargo doc` with warnings denied (llr-mc carries
#      `#![warn(missing_docs)]`, so every public item must stay
#      documented) plus the doctests, so the documented examples keep
#      compiling and passing.
#   4. fast E2 subset: the engine-equivalence tests re-check the
#      mid-size rows of results/e2_modelcheck.csv under the sequential
#      DFS, the parallel BFS engine (1/2/4 workers, exact and hashed
#      dedup) and the spill-to-disk engine (generous and zero budgets),
#      pinning the counts byte-for-byte — one family per protocol,
#      including the rival cores (LevelArray, small splitter networks).
#      This is the checker hot path; run it in release so it stays fast.
#   5. frontier-spill gate: the on-disk frontier's file-format property
#      suite (round-trips, loud failure on truncated/torn layer files)
#      and the disk-CSR liveness differential (every E2 family spill vs
#      in-RAM, trap reports, and the under-budget regression whose edge
#      list alone exceeds the byte budget). Small configs under tight
#      tmpdir budgets, including the zero-budget floor — fast in
#      release, but exactly the code that guards the multi-million-state
#      E2 rows.
#   6. POR soundness subset: the partial-order-reduction differential
#      suite (reduced vs full verdicts/terminals on every family, all
#      backends) and the footprint audit (declared footprints must
#      cover recorded accesses), also in release.
#   7. real-atomics arena gate: the SimMemory-vs-AtomicMemory
#      differential suite plus the multi-threaded stress tests in
#      release — including `arena_smoke`, a few thousand
#      uniqueness-checked acquire/release ops at 4 threads through the
#      full NameArena stack (gate → session reuse → padded atomics →
#      release-ordered stores). Release mode matters here: optimized
#      code paths plus real thread timing is where a wrong memory
#      ordering would actually surface.
#   8. crash/churn gate: the fault-injection sweeps (freeze and
#      crash–restart at every stall point, all ten protocol cores)
#      and the arena churn battery (armed clients panicking mid-acquire
#      under a 4-permit gate, 100 seeded rounds, zero leaked permits).
#      Also release: the churn rounds are real oversubscribed threads,
#      and the RAII permit-return path only earns trust under optimized
#      unwinding.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: build (release, offline) =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== docs (-D warnings) + doctests =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
cargo test -q --offline --doc --workspace

echo "== fast E2 subset (engine equivalence, release) =="
cargo test -q --offline --release --test engine_equivalence

echo "== frontier-spill gate (layer format + disk-CSR liveness, release) =="
cargo test -q --offline --release --test frontier_format --test liveness_spill

echo "== POR soundness subset (differential + footprint audit, release) =="
cargo test -q --offline --release --test por_equivalence --test footprint_audit

echo "== real-atomics arena gate (differential + stress + smoke, release) =="
cargo test -q --offline --release --test atomic_backend

echo "== crash/churn gate (fault injection + arena churn, release) =="
cargo test -q --offline --release --test crash_tolerance --test arena_churn

echo "ci.sh: all green"
