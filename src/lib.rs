//! Fast, wait-free, read/write **long-lived renaming** — a reproduction
//! of Buhrman, Garay, Hoepman & Moir, *Long-Lived Renaming Made Fast*
//! (PODC 1995).
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * the protocols — [`split`] (Figure 1), [`filter`] (Figure 4, over the
//!   [`splitter`] / [`pf`] / [`tournament`] substrates), [`ma`] (the
//!   Moir–Anderson baseline grid), [`onetime`] (the one-shot grid), and
//!   [`chain`] (Theorem 11 stage composition);
//! * the generic [`session`] layer — every protocol exposes exactly one
//!   acquire machine and one release machine (a
//!   [`ProtocolCore`]), and [`Session`] / [`Handle`] derive the
//!   model-checked loop and the threaded [`RenamingHandle`] from it, so
//!   the verified code and the executed code are identical by
//!   construction;
//! * the exploration engines — [`mc`] ([`mc::ModelChecker`] with the
//!   sequential, parallel, and external-memory backends behind
//!   [`Engine`]), [`mem`] (the flat register file), and [`gf`] (the
//!   GF(z) name-set combinatorics).
//!
//! # Example
//!
//! Rename out of a 2⁶⁴-sized id space and exhaustively verify the same
//! machines under every interleaving:
//!
//! ```
//! use long_lived_renaming::chain::Chain;
//! use long_lived_renaming::{Renaming, RenamingHandle};
//!
//! // Theorem 11: any 64-bit id renamed to one of k(k+1)/2 names.
//! let chain = Chain::theorem11(2).unwrap();
//! let mut h = chain.handle(0xDEAD_BEEF_DEAD_BEEF);
//! let name = h.acquire();
//! assert!(name < 3);
//! h.release();
//!
//! // The same step machines, model-checked through the session layer.
//! let stats = long_lived_renaming::split::spec::check_split(2, 2, 1).unwrap();
//! assert!(stats.states > 100, "got {}", stats.states);
//! ```

pub use llr_core::{chain, filter, harness, ma, onetime, pf, split, splitter, tournament};
pub use llr_core::session::{self, Engine, Handle, ProtocolCore, Session, SessionPhase};
pub use llr_core::traits::{Renaming, RenamingHandle};
pub use llr_core::types::{Direction, Name, Pid};

/// The whole protocol crate, for paths not re-exported above.
pub use llr_core as core_protocols;
/// The model checker: [`mc::ModelChecker`], [`mc::StepMachine`], engines.
pub use llr_mc as mc;
/// The shared register file: [`mem::Layout`], [`mem::AtomicMemory`].
pub use llr_mem as mem;
/// GF(z) polynomial hashing and FILTER parameter selection.
pub use llr_gf as gf;
