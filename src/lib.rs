pub use llr_core as core_protocols;
