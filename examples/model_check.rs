//! Watch the model checker work: verify the splitter reconstruction
//! exhaustively, then demonstrate a counterexample on a deliberately
//! broken variant (the naive test-then-set lock from `llr-mc`'s tests).
//!
//! Run with: `cargo run --release --example model_check`

use llr_core::splitter::spec as splitter_spec;
use llr_mc::{MachineStatus, ModelChecker, StepMachine};
use llr_mem::{Layout, Loc, Memory};

fn main() {
    // --- 1. The real thing: Theorem 5, exhaustively ----------------------
    println!("splitter invariant (Theorem 5): every output set ≤ ℓ-1 of ℓ entrants");
    for (ell, sessions) in [(2usize, 3u8), (3, 2)] {
        let stats = splitter_spec::check_all_inits(ell, sessions)
            .expect("the reconstruction is correct");
        println!(
            "  ℓ = {ell}, {sessions} sessions/proc, all 12 initial register \
             assignments: VERIFIED over {stats}"
        );
    }

    // --- 2. A broken lock, to show what a violation looks like -----------
    #[derive(Clone)]
    struct BadLock {
        lock: Loc,
        pc: u8,
        in_cs: bool,
    }
    impl StepMachine for BadLock {
        fn step(&mut self, mem: &dyn Memory) -> MachineStatus {
            match self.pc {
                0 => {
                    if mem.read(self.lock) == 0 {
                        self.pc = 1;
                    }
                    MachineStatus::Running
                }
                1 => {
                    mem.write(self.lock, 1);
                    self.in_cs = true;
                    self.pc = 2;
                    MachineStatus::Running
                }
                _ => {
                    mem.write(self.lock, 0);
                    self.in_cs = false;
                    MachineStatus::Done
                }
            }
        }
        fn key(&self, out: &mut Vec<u64>) {
            out.push(self.pc as u64);
            out.push(u64::from(self.in_cs));
        }
        fn describe(&self) -> String {
            format!("BadLock(pc={}, in_cs={})", self.pc, self.in_cs)
        }
    }

    println!("\na deliberately broken test-then-set lock:");
    let mut layout = Layout::new();
    let lock = layout.scalar("LOCK", 0);
    let m = BadLock {
        lock,
        pc: 0,
        in_cs: false,
    };
    let mc = ModelChecker::new(layout, vec![m.clone(), m]);
    match mc.check(|w| {
        let inside = w.machines.iter().filter(|m| m.in_cs).count();
        if inside > 1 {
            Err(format!("{inside} processes in the critical section"))
        } else {
            Ok(())
        }
    }) {
        Ok(_) => unreachable!("the bad lock must fail"),
        Err(e) => println!("{e}"),
    }
}
