//! The substrate as a product: FILTER's tournament tree, used standalone,
//! is an `n`-process mutual-exclusion lock built purely from reads and
//! writes (Peterson–Fischer 1977, the paper's Section 4.2).
//!
//! Eight threads with sparse 16-bit ids increment an unprotected counter
//! 10 000 times each under the lock; the total proves exclusion.
//!
//! Run with: `cargo run --release --example tournament_lock`

use llr_core::tournament::TreeMutex;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Deliberately unprotected shared data: only mutual exclusion makes the
/// unsynchronized increments below sound.
struct Counter(UnsafeCell<u64>);
// SAFETY: every access happens inside the TreeMutex critical section.
unsafe impl Sync for Counter {}

fn main() {
    let pids: Vec<u64> = (0..8u64).map(|i| i * 8191 + 13).collect();
    let mutex = Arc::new(TreeMutex::new(1 << 16, &pids));
    let counter = Arc::new(Counter(UnsafeCell::new(0)));

    println!(
        "tournament lock over a 2^16 id space: {} levels, {} ME blocks allocated (sparse)",
        mutex.shape().levels(),
        mutex.shape().allocated_blocks()
    );

    let handles: Vec<_> = pids
        .iter()
        .map(|&pid| {
            let mutex = Arc::clone(&mutex);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let guard = mutex.lock(pid);
                    // SAFETY: inside the critical section.
                    unsafe { *counter.0.get() += 1 };
                    drop(guard);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // SAFETY: all threads joined.
    let total = unsafe { *counter.0.get() };
    println!("8 threads × 10 000 locked increments = {total}");
    assert_eq!(total, 80_000, "mutual exclusion violated");
    println!("exclusion held (and the same tree is verified over every");
    println!("interleaving by `cargo run -p llr-bench --release -- e2`).");
}
