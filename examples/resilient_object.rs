//! The Moir–Anderson application (§1): renaming as a front-end that cuts
//! the overhead of a shared object whose cost depends on the size of the
//! name space of its users.
//!
//! A classic wait-free construction — e.g. an atomic snapshot or a
//! resilient register — keeps one segment per *possible* user and scans
//! all of them on every operation: cost Θ(name-space size). Used directly
//! by processes with ids in `{0..S-1}` the scan costs Θ(S); behind a
//! renaming front-end it costs Θ(D) with `D` polynomial in `k`.
//!
//! This example builds exactly that: a toy scan-based "snapshot object",
//! used both raw (indexed by pid, S = 4096) and behind a SPLIT front-end
//! (indexed by acquired name, D = 3^(k-1) = 27), and counts shared
//! accesses per operation either way.
//!
//! Run with: `cargo run --release --example resilient_object`

use llr_core::split::Split;
use llr_core::traits::{Renaming, RenamingHandle};
use llr_mem::{ArrayLoc, AtomicMemory, Counting, Layout, Memory};

/// A toy wait-free snapshot: `update` writes your segment, `scan` reads
/// every segment. Cost of `scan` = number of possible users — which is
/// the whole point.
struct ScanObject {
    mem: AtomicMemory,
    segments: ArrayLoc,
}

impl ScanObject {
    fn new(users: u64) -> Self {
        let mut layout = Layout::new();
        let segments = layout.array("SEG", users as usize, 0);
        Self {
            mem: AtomicMemory::new(&layout),
            segments,
        }
    }

    /// update + scan, returning (sum, shared accesses spent).
    fn operate(&self, slot: u64, value: u64) -> (u64, u64) {
        let mem = Counting::new(&self.mem);
        mem.write(self.segments.at(slot as usize), value);
        let sum: u64 = (0..self.segments.len())
            .map(|i| mem.read(self.segments.at(i)))
            .sum();
        (sum, mem.accesses())
    }
}

fn main() {
    let s: u64 = 4096; // source name space
    let k = 4; // concurrency bound

    // --- Raw: the object must reserve a segment per possible pid --------
    let raw = ScanObject::new(s);
    let (_, raw_cost) = raw.operate(1234, 7);
    println!("raw object      : one operation = {raw_cost:>5} shared accesses (Θ(S), S = {s})");

    // --- Renamed: segments per destination name only ---------------------
    let split = Split::new(k);
    let renamed = ScanObject::new(split.dest_size());
    let mut h = split.handle(1234);
    let slot = h.acquire();
    let rename_cost = h.accesses();
    let (_, op_cost) = renamed.operate(slot, 7);
    h.release();
    let total = h.accesses() + op_cost;
    println!(
        "renamed object  : one operation = {op_cost:>5} accesses (Θ(D), D = {}) \
         + {rename_cost} to rename + {} to release = {total} total",
        split.dest_size(),
        h.accesses() - rename_cost,
    );
    println!(
        "speedup         : {:.1}× fewer shared accesses per operation",
        raw_cost as f64 / total as f64
    );

    // --- And it stays correct under churn: many pids, few active --------
    let mut distinct = std::collections::HashSet::new();
    for pid in (0..s).step_by(257) {
        let mut h = split.handle(pid);
        let slot = h.acquire();
        let (_, c) = renamed.operate(slot, pid);
        assert!(c <= 1 + split.dest_size());
        distinct.insert(slot);
        h.release();
    }
    println!(
        "churned {} pids sequentially through the front-end; {} distinct slots touched",
        s / 257 + 1,
        distinct.len()
    );
}
