//! Quickstart: rename huge process ids to a tiny dense name space, three
//! ways (SPLIT, FILTER, and the Theorem 11 chain).
//!
//! Run with: `cargo run --release --example quickstart`

use llr_core::chain::Chain;
use llr_core::filter::Filter;
use llr_core::split::Split;
use llr_core::traits::{Renaming, RenamingHandle};
use llr_gf::FilterParams;

fn main() {
    let k = 4; // at most 4 processes are ever active at once

    // --- SPLIT: any 64-bit id, O(k) time, 3^(k-1) names -----------------
    let split = Split::new(k);
    println!(
        "SPLIT      : S = 2^64, D = {:>5}, k = {k}",
        split.dest_size()
    );
    let mut h = split.handle(0xDEAD_BEEF_CAFE);
    let name = h.acquire();
    println!(
        "  pid 0xDEAD_BEEF_CAFE acquired name {name:>3} in {} shared accesses",
        h.accesses()
    );
    h.release();

    // --- FILTER: here S = 100 000, parameters chosen automatically ------
    let params = FilterParams::choose(k, 100_000).expect("feasible parameters");
    let participants: Vec<u64> = (0..16).map(|i| i * 3_121 + 2).collect();
    let filter = Filter::new(params, &participants).expect("valid participants");
    println!(
        "FILTER     : S = {:>5}, D = {:>5}, d = {}, z = {}",
        filter.source_size(),
        filter.dest_size(),
        params.degree(),
        params.modulus()
    );
    let mut h = filter.handle(participants[7]);
    let name = h.acquire();
    println!(
        "  pid {} acquired name {name:>3} in {} shared accesses",
        participants[7],
        h.accesses()
    );
    h.release();

    // --- Theorem 11 chain: any S → k(k+1)/2 names in O(k³) --------------
    let chain = Chain::theorem11(k).expect("valid k");
    println!(
        "CHAIN      : S = 2^64, D = {:>5}, funnel = {:?}",
        chain.dest_size(),
        chain.funnel()
    );
    let mut h = chain.handle(u64::MAX - 7);
    let name = h.acquire();
    println!(
        "  pid 2^64-8 acquired name {name:>3} in {} shared accesses \
         (stage names: {:?})",
        h.accesses(),
        h.stage_names()
    );
    h.release();

    // Names are long-lived: release and reacquire forever.
    let mut h = chain.handle(12345);
    for round in 0..3 {
        let name = h.acquire();
        println!("  round {round}: pid 12345 holds name {name}");
        h.release();
    }
}
