//! The paper's motivating scenario (§1): a Unix-like system where
//! processes carry large, sparse identifiers, but only a handful run
//! concurrently. Renaming maps whoever is currently active onto a dense
//! set of "worker slots".
//!
//! Here 32 "daemon processes" with scattered 24-bit pids contend for
//! k = 6 concurrent slots backed by a FILTER instance. Each active daemon
//! acquires a slot name, uses a slot-indexed resource (a per-slot counter
//! — something you could never array-index by raw pid), and releases.
//!
//! Run with: `cargo run --release --example worker_slots`

use llr_core::filter::Filter;
use llr_core::harness::{Gate, Oracle};
use llr_core::traits::{Renaming, RenamingHandle};
use llr_gf::FilterParams;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let k = 6;
    let s: u64 = 1 << 24; // 24-bit pid space

    // FILTER parameters for S = 2^24 at k = 6, chosen automatically.
    let params = FilterParams::choose(k, s).expect("feasible parameters");
    println!(
        "parameters : d = {}, z = {}, D = {} (for S = {s}, k = {k})",
        params.degree(),
        params.modulus(),
        params.dest_size()
    );

    // 32 daemons with scattered pids register up front.
    let daemons: Vec<u64> = (0..32u64).map(|i| (i * 524_287 + 9_999) % s).collect();
    let filter = Filter::new(params, &daemons).expect("registration");

    // One tiny, dense, slot-indexed resource — the payoff of renaming.
    let slot_work: Vec<AtomicU64> = (0..filter.dest_size())
        .map(|_| AtomicU64::new(0))
        .collect();

    let oracle = Oracle::new(filter.dest_size());
    let gate = Gate::new(k); // at most k daemons active, per the contract
    let max_acc = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for &pid in &daemons {
            let filter = &filter;
            let oracle = &oracle;
            let gate = &gate;
            let slot_work = &slot_work;
            let max_acc = &max_acc;
            scope.spawn(move || {
                let mut h = filter.handle(pid);
                for _ in 0..50 {
                    gate.enter();
                    let before = h.accesses();
                    let slot = h.acquire();
                    oracle.claim(slot, pid);
                    // "Use" the slot: bump its counter a few times.
                    slot_work[slot as usize].fetch_add(1, Ordering::Relaxed);
                    oracle.release_claim(slot, pid);
                    h.release();
                    max_acc.fetch_max(h.accesses() - before, Ordering::Relaxed);
                    gate.exit();
                }
            });
        }
    });

    let used: Vec<(usize, u64)> = slot_work
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
        .filter(|&(_, c)| c > 0)
        .collect();
    println!(
        "32 daemons × 50 sessions ran through {} distinct slots (D = {}):",
        used.len(),
        filter.dest_size()
    );
    for (slot, count) in &used {
        println!("  slot {slot:>4}: {count:>4} sessions");
    }
    println!(
        "worst acquire+release: {} shared accesses (Theorem 10 bound: {})",
        max_acc.load(Ordering::Relaxed),
        params.getname_access_bound() + params.release_access_bound()
    );
    println!("uniqueness violations: {}", oracle.violations());
    assert_eq!(oracle.violations(), 0);
}
